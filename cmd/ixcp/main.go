// Command ixcp demonstrates the control plane's elastic thread policy
// (§4.1/§6 future work, implemented here): an IX dataplane starts with
// one elastic thread; IXCP watches NIC-edge queue depth and core
// utilization, growing and shrinking the thread set while RSS flow groups
// migrate between threads.
package main

import (
	"flag"
	"fmt"
	"time"

	"ix/internal/apps/echo"
	"ix/internal/cp"
	"ix/internal/harness"
)

func main() {
	maxThreads := flag.Int("max-threads", 6, "hardware queue pairs available")
	flag.Parse()

	cl := harness.NewCluster(11)
	m := echo.NewMetrics()
	cl.AddHost("server", harness.HostSpec{
		Arch: harness.ArchIX, Cores: 1, MaxThreads: *maxThreads,
		Factory: echo.ServerFactory(9000, 64),
	})
	srv := cl.IXServer(0)
	srvIP := srv.IP()
	for i := 0; i < 6; i++ {
		cl.AddHost("client", harness.HostSpec{
			Arch: harness.ArchLinux, Cores: 4,
			Factory: echo.ClientFactory(echo.ClientConfig{
				ServerIP: srvIP, Port: 9000, MsgSize: 64, Rounds: 64, Conns: 8, Metrics: m,
			}),
		})
	}
	cl.Start()
	ctl := cp.New(cl.Eng, srv, cp.DefaultPolicy())
	ctl.Start()

	fmt.Println("ixcp: elastic thread scaling under a 6-client echo load")
	for step := 0; step < 10; step++ {
		m.ResetWindow()
		cl.Run(5 * time.Millisecond)
		fmt.Printf("  t=%8v threads=%d rate=%7.0f msg/s drops=%d\n",
			cl.Eng.Now(), srv.Threads(), float64(m.Msgs.Since())/0.005, srv.RxDrops())
	}
	m.Running = false
	fmt.Println("control plane log:")
	for _, ev := range ctl.Log {
		fmt.Printf("  %8v %-8s threads=%d\n", ev.At, ev.Action, ev.Threads)
	}
}
