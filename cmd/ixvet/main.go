// ixvet is the repository's invariant checker: a vet-compatible
// multichecker over the three ixvet analyzer families
// (determinism, ownership, hotpath — see internal/analysis and the
// "Static invariant enforcement" section of DESIGN.md).
//
// It speaks the `go vet -vettool` protocol, so the canonical invocation
// is:
//
//	go build -o ixvet ./cmd/ixvet
//	go vet -vettool=$PWD/ixvet ./...
//
// As a convenience, invoking it with package patterns re-execs `go vet
// -vettool=<self>` so `ixvet ./...` does the same thing.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"ix/internal/analysis"
	"ix/internal/analysis/determinism"
	"ix/internal/analysis/hotpath"
	"ix/internal/analysis/ownership"
)

func analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		ownership.Analyzer,
		hotpath.Analyzer,
	}
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	switch {
	case args[0] == "-V=full" || args[0] == "--V=full":
		// Build-tool handshake: cmd/go derives the cache key for vet
		// results from this line, so it must change when the binary does.
		fmt.Printf("ixvet version devel buildID=%s\n", selfID())
		return
	case args[0] == "-flags" || args[0] == "--flags":
		// cmd/go queries the tool's flags; ixvet's analyzers are always
		// all enabled and take no flags.
		fmt.Println("[]")
		return
	case args[0] == "help" || args[0] == "-h" || args[0] == "-help" || args[0] == "--help":
		usage()
		return
	case args[0] == "-suppressions" || args[0] == "--suppressions":
		// Count //ixvet:ignore sites from the sources, not from vet
		// output: go vet's result cache does not replay a clean
		// package's stderr, so warm runs would under-count.
		root := "."
		if len(args) > 1 {
			root = args[1]
		}
		n, err := analysis.CountSuppressionSites(root, analyzers())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ixvet: counting suppressions: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("ixvet: %d //ixvet:ignore suppression site(s) in tree\n", n)
		return
	case strings.HasSuffix(args[len(args)-1], ".cfg"):
		// Invoked by go vet on one compilation unit.
		os.Exit(analysis.RunUnit(args[len(args)-1], analyzers()))
	default:
		// Package patterns: re-exec through go vet so package loading,
		// export data and caching are the build system's problem.
		self, err := os.Executable()
		if err == nil {
			self, err = filepath.Abs(self)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ixvet: locating own binary: %v\n", err)
			os.Exit(2)
		}
		cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		cmd.Stdin = os.Stdin
		if err := cmd.Run(); err != nil {
			if ee, ok := err.(*exec.ExitError); ok {
				os.Exit(ee.ExitCode())
			}
			fmt.Fprintf(os.Stderr, "ixvet: %v\n", err)
			os.Exit(2)
		}
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `ixvet proves the simulator's invariants at build time.

Usage:
	go vet -vettool=/path/to/ixvet ./...   # canonical (CI) form
	ixvet ./...                            # convenience re-exec of the above
	ixvet -suppressions [dir]              # count //ixvet:ignore sites in the tree

Analyzers:
`)
	for _, a := range analyzers() {
		fmt.Fprintf(os.Stderr, "	%-12s %s\n", a.Name, firstLine(a.Doc))
	}
	fmt.Fprintf(os.Stderr, `
Suppress a finding with an adjacent comment, reason mandatory:
	//ixvet:ignore(<analyzer>) <reason>
`)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// selfID hashes the executable so vet's result cache invalidates when
// the checker changes.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
