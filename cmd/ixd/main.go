// Command ixd boots one IX dataplane serving memcached on a simulated
// testbed, drives it with a mutilate load sweep, and prints live
// dataplane statistics — a quick way to watch the run-to-completion
// engine (batch sizes, kernel/user split) respond to load.
package main

import (
	"flag"
	"fmt"
	"time"

	"ix/internal/harness"
	"ix/internal/mutilate"
)

func main() {
	cores := flag.Int("cores", 4, "elastic threads")
	batch := flag.Int("batch", 64, "adaptive batch bound B")
	rps := flag.Float64("rps", 800_000, "offered load (requests/second)")
	duration := flag.Duration("duration", 100*time.Millisecond, "virtual run time")
	flag.Parse()

	fmt.Printf("ixd: IX dataplane, %d elastic threads, B=%d, USR workload @ %.0f RPS\n",
		*cores, *batch, *rps)
	steps := 5
	for i := 1; i <= steps; i++ {
		target := *rps * float64(i) / float64(steps)
		res := harness.RunMemcached(harness.MemcSetup{
			ServerArch:  harness.ArchIX,
			ServerCores: *cores,
			BatchBound:  *batch,
			Workload:    mutilate.USR,
			TargetRPS:   target,
			ClientHosts: 8,
			ClientCores: 2,
			Warmup:      *duration / 4,
			Window:      *duration,
		})
		fmt.Printf("  offered %8.0f RPS → achieved %8.0f RPS  avg %8v  p99 %8v  kernel %4.1f%%\n",
			target, res.AchievedRPS, res.AgentMean.Round(time.Microsecond),
			res.AgentP99.Round(time.Microsecond), res.ServerKernelShare*100)
	}
}
