// Command ixbench regenerates the tables and figures of the IX paper's
// evaluation (§5). Each experiment prints the same rows/series the paper
// plots; see EXPERIMENTS.md for the paper-vs-measured record.
//
// Usage:
//
//	ixbench -experiment fig3b -scale full
//	ixbench -experiment all -scale quick
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"ix/internal/harness"
)

func main() {
	exp := flag.String("experiment", "all", "experiment name (fig2, fig3a, fig3b, fig3c, fig4, fig5, fig6, table2, elastic, incast, chaos, tenants, httpkv) or 'all'")
	scale := flag.String("scale", "quick", "experiment scale: quick or full")
	window := flag.Duration("window", 0, "override measurement window")
	shards := flag.Int("shards", 1, "parallel engine shards for shard-aware experiments (1 = serial)")
	flag.Parse()

	sc := harness.Quick
	if *scale == "full" {
		sc = harness.Full
	}
	if *window > 0 {
		sc.Window = *window
	}
	sc.Shards = *shards

	names := []string{*exp}
	if *exp == "all" {
		names = names[:0]
		for n := range harness.Experiments {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	for _, n := range names {
		fn, ok := harness.Experiments[n]
		if !ok {
			fmt.Fprintf(os.Stderr, "ixbench: unknown experiment %q\n", n)
			os.Exit(2)
		}
		start := time.Now()
		r := fn(sc)
		r.Notes = append(r.Notes, fmt.Sprintf("scale=%s, wall time %v", sc.Name, time.Since(start).Round(time.Millisecond)))
		r.Fprint(os.Stdout)
	}
}
