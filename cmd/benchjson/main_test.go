package main

import (
	"strings"
	"testing"
)

func rec(benches ...Bench) *Record { return &Record{Benchmarks: benches} }

func bench(name string, wall float64, metrics map[string]float64) Bench {
	if metrics == nil {
		metrics = map[string]float64{}
	}
	return Bench{Name: name, Iterations: 1, WallNsPerOp: wall, Metrics: metrics}
}

func TestParseBench(t *testing.T) {
	b, ok := parseBench("BenchmarkFig4ConnScaling	       1	123456789 ns/op	       449.6 IX40_bytes_per_conn	   1680000 IX40_peak_msgs")
	if !ok {
		t.Fatal("parseBench failed")
	}
	if b.Name != "Fig4ConnScaling" || b.WallNsPerOp != 123456789 {
		t.Fatalf("parsed %+v", b)
	}
	if b.Metrics["IX40_bytes_per_conn"] != 449.6 || b.Metrics["IX40_peak_msgs"] != 1680000 {
		t.Fatalf("metrics %+v", b.Metrics)
	}
}

func TestLowerIsBetter(t *testing.T) {
	cases := map[string]bool{
		"IX40_bytes_per_conn": true,
		"heap_bytes":          true,
		"peak_msgs":           false,
		"IX_peak_Gbps":        false,
		"USR_IX_SLA_RPS":      false,
	}
	for m, want := range cases {
		if got := lowerIsBetter(m); got != want {
			t.Errorf("lowerIsBetter(%q) = %v, want %v", m, got, want)
		}
	}
}

// Wall-clock gating semantics are unchanged: growth beyond the budget
// fails, shrinkage never does.
func TestDiffWallGate(t *testing.T) {
	old := rec(bench("Fig4", 100, nil))
	var out strings.Builder
	if !diff(rec(bench("Fig4", 105, nil)), old, "old.json", []string{"Fig4"}, 0.10, &out) {
		t.Errorf("5%% wall growth within 10%% budget failed:\n%s", out.String())
	}
	out.Reset()
	if diff(rec(bench("Fig4", 120, nil)), old, "old.json", []string{"Fig4"}, 0.10, &out) {
		t.Errorf("20%% wall growth passed a 10%% budget:\n%s", out.String())
	}
	out.Reset()
	if !diff(rec(bench("Fig4", 50, nil)), old, "old.json", []string{"Fig4"}, 0.10, &out) {
		t.Errorf("wall speedup failed the gate:\n%s", out.String())
	}
}

// A byte-valued metric gate is lower-is-better: growth beyond the budget
// fails; any reduction passes.
func TestDiffMetricGateBytes(t *testing.T) {
	gate := []string{"Fig4:IX40_bytes_per_conn"}
	old := rec(bench("Fig4", 100, map[string]float64{"IX40_bytes_per_conn": 660}))
	var out strings.Builder
	if !diff(rec(bench("Fig4", 100, map[string]float64{"IX40_bytes_per_conn": 450})), old,
		"old.json", gate, 0.05, &out) {
		t.Errorf("bytes/conn reduction failed the gate:\n%s", out.String())
	}
	out.Reset()
	if diff(rec(bench("Fig4", 100, map[string]float64{"IX40_bytes_per_conn": 700})), old,
		"old.json", gate, 0.05, &out) {
		t.Errorf("bytes/conn growth beyond budget passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "lower-is-better") {
		t.Errorf("report does not state the gate direction:\n%s", out.String())
	}
	out.Reset()
	if !diff(rec(bench("Fig4", 100, map[string]float64{"IX40_bytes_per_conn": 680})), old,
		"old.json", gate, 0.05, &out) {
		t.Errorf("3%% bytes/conn growth within a 5%% budget failed:\n%s", out.String())
	}
}

// A rate metric gate is higher-is-better: shrinkage beyond the budget
// fails; growth passes.
func TestDiffMetricGateRate(t *testing.T) {
	gate := []string{"Fig4:IX40_peak_msgs"}
	old := rec(bench("Fig4", 100, map[string]float64{"IX40_peak_msgs": 1000}))
	var out strings.Builder
	if diff(rec(bench("Fig4", 100, map[string]float64{"IX40_peak_msgs": 800})), old,
		"old.json", gate, 0.10, &out) {
		t.Errorf("20%% rate drop passed a 10%% budget:\n%s", out.String())
	}
	out.Reset()
	if !diff(rec(bench("Fig4", 100, map[string]float64{"IX40_peak_msgs": 1200})), old,
		"old.json", gate, 0.10, &out) {
		t.Errorf("rate growth failed the gate:\n%s", out.String())
	}
}

// A gated metric missing from the new run means the guard did not run —
// that must fail loudly. Missing from the baseline starts its trajectory.
func TestDiffMetricGateMissing(t *testing.T) {
	gate := []string{"Fig4:IX40_bytes_per_conn"}
	old := rec(bench("Fig4", 100, map[string]float64{"IX40_bytes_per_conn": 660}))
	var out strings.Builder
	if diff(rec(bench("Fig4", 100, nil)), old, "old.json", gate, 0.05, &out) {
		t.Errorf("missing gated metric passed:\n%s", out.String())
	}
	out.Reset()
	oldNoMetric := rec(bench("Fig4", 100, nil))
	if !diff(rec(bench("Fig4", 100, map[string]float64{"IX40_bytes_per_conn": 450})), oldNoMetric,
		"old.json", gate, 0.05, &out) {
		t.Errorf("metric new in this record failed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "gating starts with the next baseline") {
		t.Errorf("report does not note the fresh trajectory:\n%s", out.String())
	}
}
