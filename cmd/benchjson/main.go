// Command benchjson converts `go test -bench` output on stdin into the
// JSON perf record the CI benchmark step commits as BENCH_PR<n>.json:
// wall-clock and the reported peak metrics per figure benchmark, so the
// performance trajectory of the reproduction is tracked across PRs.
//
// With -compare it also diffs the new record against a previous PR's
// file and fails (exit 1) when a gated benchmark regressed beyond
// -maxregress — the CI guard that keeps the figure benchmarks from
// quietly slowing down.
//
// A gate entry is either a benchmark name (sans Benchmark prefix),
// which gates wall-clock, or "Name:metric", which gates one of the
// benchmark's ReportMetric values. Metric gates are direction-aware:
// a metric whose name mentions bytes (a memory budget, e.g.
// IX40_bytes_per_conn) is lower-is-better and fails when it grows
// beyond the budget; any other metric (a rate) is higher-is-better and
// fails when it shrinks beyond the budget.
//
// Usage:
//
//	go test -run=NONE -bench='BenchmarkFig|BenchmarkTable2' -benchtime=1x . | benchjson > BENCH_PR3.json
//	... | benchjson -compare BENCH_PR2.json -gate Fig3aCoreScaling,Fig4ConnScaling:IX40_bytes_per_conn -maxregress 0.10 > BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark's record.
type Bench struct {
	Name string `json:"name"`
	// Iterations is b.N (1 for -benchtime=1x runs).
	Iterations int64 `json:"iterations"`
	// WallNsPerOp is the wall-clock per iteration (ns/op).
	WallNsPerOp float64 `json:"wall_ns_per_op"`
	// Metrics holds the b.ReportMetric values (peak msgs/s, Gbps, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Record is the file layout.
type Record struct {
	Package    string  `json:"package,omitempty"`
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	compare := flag.String("compare", "", "previous BENCH_PR<n>.json to diff wall-clock against")
	gate := flag.String("gate", "Fig3aCoreScaling,Fig3bMsgsPerConn",
		"comma-separated benchmark names (sans Benchmark prefix) gated by -maxregress")
	maxRegress := flag.Float64("maxregress", 0.10,
		"fail when a gated benchmark's wall-clock grows by more than this fraction")
	flag.Parse()

	var rec Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			rec.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rec.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				// A repeated benchmark name supersedes the earlier result
				// (the CI retry path concatenates a re-run after the
				// original stream).
				replaced := false
				for i := range rec.Benchmarks {
					if rec.Benchmarks[i].Name == b.Name {
						rec.Benchmarks[i] = b
						replaced = true
						break
					}
				}
				if !replaced {
					rec.Benchmarks = append(rec.Benchmarks, b)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *compare != "" {
		if !diffAgainst(&rec, *compare, strings.Split(*gate, ","), *maxRegress) {
			os.Exit(1)
		}
	}
}

// diffAgainst loads a previous record file and runs diff against it.
func diffAgainst(rec *Record, path string, gated []string, budget float64) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: compare: %v\n", err)
		return false
	}
	var old Record
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: compare %s: %v\n", path, err)
		return false
	}
	return diff(rec, &old, path, gated, budget, os.Stderr)
}

// lowerIsBetter classifies a gated metric's good direction: memory
// budgets (anything byte-valued) must not grow; every other metric is a
// rate that must not shrink.
func lowerIsBetter(metric string) bool {
	m := strings.ToLower(metric)
	return strings.Contains(m, "bytes") || strings.Contains(m, "_b_") ||
		strings.HasSuffix(m, "_b")
}

// diff reports the trajectory of the new record versus a previous one
// and returns false when a gated quantity regressed beyond the budget.
// Wall-clock gates ("Name") regress upward; metric gates ("Name:metric")
// are direction-aware via lowerIsBetter.
func diff(rec, old *Record, path string, gated []string, budget float64, w io.Writer) bool {
	prev := map[string]*Bench{}
	for i := range old.Benchmarks {
		prev[old.Benchmarks[i].Name] = &old.Benchmarks[i]
	}
	// Gate entries: bare benchmark names gate wall-clock, "Name:metric"
	// entries gate one reported metric. The entry order is preserved so
	// the report reads in the order the gate list was written.
	wallGate := map[string]bool{}
	type metricGate struct{ name, metric string }
	var metricGates []metricGate
	var wallNames []string
	for _, g := range gated {
		if g = strings.TrimSpace(g); g == "" {
			continue
		}
		if name, metric, found := strings.Cut(g, ":"); found {
			metricGates = append(metricGates, metricGate{name, metric})
		} else if !wallGate[g] {
			wallGate[g] = true
			wallNames = append(wallNames, g)
		}
	}
	ok := true
	regressed := false
	// A gated benchmark missing from the new run means the guard did not
	// run — fail loudly rather than silently passing. Missing from the
	// baseline is different: the benchmark (or metric) was added this PR,
	// so its trajectory starts with this record and gating begins next PR.
	cur := map[string]*Bench{}
	for i := range rec.Benchmarks {
		cur[rec.Benchmarks[i].Name] = &rec.Benchmarks[i]
	}
	for _, g := range wallNames {
		if cur[g] == nil {
			fmt.Fprintf(w, "benchjson: gated benchmark %s missing from the new run\n", g)
			ok = false
		}
		if prev[g] == nil {
			fmt.Fprintf(w, "benchjson: gated benchmark %s is new (absent from %s); gating starts with the next baseline\n", g, path)
		}
	}
	for _, g := range metricGates {
		name, m := g.name, g.metric
		b := cur[name]
		if b == nil || b.Metrics[m] == 0 {
			fmt.Fprintf(w, "benchjson: gated metric %s:%s missing from the new run\n", name, m)
			ok = false
			continue
		}
		p := prev[name]
		if p == nil || p.Metrics[m] == 0 {
			fmt.Fprintf(w, "benchjson: gated metric %s:%s is new (absent from %s); gating starts with the next baseline\n", name, m, path)
			continue
		}
		was, now := p.Metrics[m], b.Metrics[m]
		delta := now/was - 1
		var bad bool
		dir := "higher-is-better"
		if lowerIsBetter(m) {
			dir = "lower-is-better"
			bad = delta > budget // a budget must not grow
		} else {
			bad = -delta > budget // a rate must not shrink
		}
		status := " [gated]"
		if bad {
			status = " [gated: FAIL]"
			ok = false
			regressed = true
		}
		fmt.Fprintf(w, "benchjson: %-22s %s %10.4g -> %10.4g  %+6.1f%% (%s)%s\n",
			name, m, was, now, delta*100, dir, status)
	}
	for _, b := range rec.Benchmarks {
		p := prev[b.Name]
		if p == nil || p.WallNsPerOp <= 0 || b.WallNsPerOp <= 0 {
			continue
		}
		was := p.WallNsPerOp
		delta := b.WallNsPerOp/was - 1
		status := ""
		if wallGate[b.Name] {
			status = " [gated]"
			if delta > budget {
				status = " [gated: FAIL]"
				ok = false
				regressed = true
			}
		}
		fmt.Fprintf(w, "benchjson: %-22s %8.2fs -> %8.2fs  %+6.1f%%%s\n",
			b.Name, was/1e9, b.WallNsPerOp/1e9, delta*100, status)
	}
	if regressed {
		fmt.Fprintf(w, "benchjson: gated regression exceeds %.0f%% vs %s\n",
			budget*100, path)
	} else if !ok {
		fmt.Fprintf(w, "benchjson: gated quantity missing; the regression guard did not run\n")
	}
	return ok
}

// parseBench decodes one result line: name, iterations, then
// "value unit" pairs (ns/op first, ReportMetric entries after).
func parseBench(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Bench{}, false
	}
	b := Bench{Name: strings.TrimPrefix(f[0], "Benchmark"), Metrics: map[string]float64{}}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b.Iterations = n
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		if f[i+1] == "ns/op" {
			b.WallNsPerOp = v
		} else {
			b.Metrics[f[i+1]] = v
		}
	}
	return b, true
}
