// Command benchjson converts `go test -bench` output on stdin into the
// JSON perf record the CI benchmark step commits as BENCH_PR<n>.json:
// wall-clock and the reported peak metrics per figure benchmark, so the
// performance trajectory of the reproduction is tracked across PRs.
//
// Usage:
//
//	go test -run=NONE -bench='BenchmarkFig|BenchmarkTable2' -benchtime=1x . | benchjson > BENCH_PR2.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark's record.
type Bench struct {
	Name string `json:"name"`
	// Iterations is b.N (1 for -benchtime=1x runs).
	Iterations int64 `json:"iterations"`
	// WallNsPerOp is the wall-clock per iteration (ns/op).
	WallNsPerOp float64 `json:"wall_ns_per_op"`
	// Metrics holds the b.ReportMetric values (peak msgs/s, Gbps, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Record is the file layout.
type Record struct {
	Package    string  `json:"package,omitempty"`
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	var rec Record
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			rec.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			rec.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rec.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rec.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBench(line); ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line: name, iterations, then
// "value unit" pairs (ns/op first, ReportMetric entries after).
func parseBench(line string) (Bench, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Bench{}, false
	}
	b := Bench{Name: strings.TrimPrefix(f[0], "Benchmark"), Metrics: map[string]float64{}}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b.Iterations = n
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		if f[i+1] == "ns/op" {
			b.WallNsPerOp = v
		} else {
			b.Metrics[f[i+1]] = v
		}
	}
	return b, true
}
