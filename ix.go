// Package ix is a faithful, simulation-backed reproduction of
// "IX: A Protected Dataplane Operating System for High Throughput and
// Low Latency" (Belay et al., OSDI 2014).
//
// It provides, as a library:
//
//   - the IX dataplane operating system (run-to-completion elastic
//     threads, adaptive bounded batching, the Table 1 zero-copy
//     syscall/event API, dune-style three-way protection) in
//     ix/internal/core and its user-level library in ix/internal/libix;
//   - the evaluation substrates built from scratch: a deterministic
//     discrete-event engine, a multi-queue NIC with real Toeplitz RSS,
//     links and a cut-through switch, a full TCP/IP stack over real wire
//     formats, hierarchical timing wheels and per-thread memory pools;
//   - the paper's baselines (a tuned Linux kernel-stack model and an
//     mTCP user-level-stack model) running the *same* TCP engine and the
//     *same* applications;
//   - the workloads: the MegaPipe/mTCP echo benchmark, NetPIPE, a
//     memcached clone and a mutilate-style load generator;
//   - a harness that regenerates every figure and table of §5.
//
// This package is the public facade: cluster construction, host
// specification, application factories and the experiment registry. See
// the examples/ directory for runnable programs and DESIGN.md for the
// architecture and the paper-to-module map.
package ix

import (
	"time"

	"ix/internal/app"
	"ix/internal/apps/echo"
	"ix/internal/apps/memcached"
	"ix/internal/core"
	"ix/internal/cp"
	"ix/internal/faults"
	"ix/internal/harness"
	"ix/internal/mutilate"
	"ix/internal/sim"
	"ix/internal/wire"
)

// Re-exported architecture selectors.
const (
	ArchIX    = harness.ArchIX
	ArchLinux = harness.ArchLinux
	ArchMTCP  = harness.ArchMTCP
)

// Core aliases: the testbed.
type (
	// Cluster is a simulated testbed: hosts, links and a switch on one
	// deterministic virtual clock.
	Cluster = harness.Cluster
	// HostSpec describes one machine (architecture, cores, NIC ports,
	// application).
	HostSpec = harness.HostSpec
	// Arch selects the OS architecture of a host.
	Arch = harness.Arch
	// Result holds an experiment's series and tables.
	Result = harness.Result
	// Scale selects experiment sizing (Quick vs Full).
	Scale = harness.Scale
	// IPv4 is an IPv4 address.
	IPv4 = wire.IPv4
)

// Application-facing aliases.
type (
	// Handler is the event-driven application interface (the libix
	// programming model, also served by the Linux and mTCP adapters).
	Handler = app.Handler
	// Conn is a connection as seen by a Handler.
	Conn = app.Conn
	// Env is the per-thread runtime handed to applications.
	Env = app.Env
	// Factory creates per-thread application instances.
	Factory = app.Factory
	// Dataplane is an IX instance (for direct control-plane interaction).
	Dataplane = core.Dataplane
	// Controller is the IXCP control plane policy daemon.
	Controller = cp.Controller
)

// Experiment scales.
var (
	// Full approximates the paper's testbed (§5.1).
	Full = harness.Full
	// Quick is reduced sizing for tests and benchmarks.
	Quick = harness.Quick
)

// NewCluster creates an empty testbed with a deterministic seed.
func NewCluster(seed int64) *Cluster { return harness.NewCluster(seed) }

// Addr4 builds an IPv4 address.
func Addr4(a, b, c, d byte) IPv4 { return wire.Addr4(a, b, c, d) }

// EchoServer returns an echo application factory (the §5.2–5.4
// microbenchmark server) for the given port and message size.
func EchoServer(port uint16, msgSize int) Factory { return echo.ServerFactory(port, msgSize) }

// EchoClientConfig configures echo load generation.
type EchoClientConfig = echo.ClientConfig

// EchoMetrics aggregates echo client measurements.
type EchoMetrics = echo.Metrics

// NewEchoMetrics returns a running metrics sink.
func NewEchoMetrics() *EchoMetrics { return echo.NewMetrics() }

// EchoClient returns an echo load-generator factory.
func EchoClient(cfg EchoClientConfig) Factory { return echo.ClientFactory(cfg) }

// MemcachedStore is the shared key-value store of the memcached clone.
type MemcachedStore = memcached.Store

// NewMemcachedStore builds a store bounded at maxBytes.
func NewMemcachedStore(maxBytes int) *MemcachedStore { return memcached.NewStore(maxBytes) }

// MemcachedServer returns the memcached application factory.
func MemcachedServer(store *MemcachedStore, port uint16) Factory {
	return memcached.ServerFactory(store, port)
}

// Mutilate workloads (§5.5, Facebook ETC and USR).
var (
	ETC = mutilate.ETC
	USR = mutilate.USR
)

// MutilateMetrics aggregates load-generator measurements.
type MutilateMetrics = mutilate.Metrics

// NewMutilateMetrics returns a running metrics sink.
func NewMutilateMetrics() *MutilateMetrics { return mutilate.NewMetrics() }

// MutilateLoad returns a paced load-generator factory.
func MutilateLoad(cfg mutilate.LoadConfig) Factory { return mutilate.LoadFactory(cfg) }

// MutilateLoadConfig configures load threads.
type MutilateLoadConfig = mutilate.LoadConfig

// MutilateAgent returns the unloaded latency-sampling agent factory.
func MutilateAgent(cfg mutilate.AgentConfig) Factory { return mutilate.AgentFactory(cfg) }

// MutilateAgentConfig configures the latency agent.
type MutilateAgentConfig = mutilate.AgentConfig

// Control plane aliases: the IXCP policy daemon's configuration and
// telemetry.
type (
	// ControllerPolicy parameterizes the elastic scaling loop (queue
	// depth, utilization and cycles-per-packet thresholds).
	ControllerPolicy = cp.Policy
	// ControllerEvent is one logged control-plane action.
	ControllerEvent = cp.Event
	// ControllerSample is one policy-interval observation (queue depth,
	// utilization, cycles-per-packet).
	ControllerSample = cp.Sample
)

// DefaultControllerPolicy returns the conservative elastic policy.
func DefaultControllerPolicy() ControllerPolicy { return cp.DefaultPolicy() }

// NewController attaches an IXCP elastic-scaling controller to an IX
// dataplane with the default policy.
func NewController(eng *sim.Engine, dp *Dataplane) *Controller {
	return cp.New(eng, dp, cp.DefaultPolicy())
}

// NewControllerWithPolicy attaches an IXCP controller with an explicit
// policy.
func NewControllerWithPolicy(eng *sim.Engine, dp *Dataplane, p ControllerPolicy) *Controller {
	return cp.New(eng, dp, p)
}

// Elastic scaling experiment (the §3 consolidation scenario): sweep
// offered load up and down and record cores-used vs throughput/latency.
type (
	// ElasticSetup configures RunElastic.
	ElasticSetup = harness.ElasticSetup
	// ElasticResult is one ramp run's measurements.
	ElasticResult = harness.ElasticResult
	// ElasticPoint is one measurement window of the ramp.
	ElasticPoint = harness.ElasticPoint
)

// RunElastic executes one load ramp against an elastically scaled IX
// memcached server.
func RunElastic(s ElasticSetup) ElasticResult { return harness.RunElastic(s) }

// Fault injection: the deterministic link-impairment layer and the
// workloads built on it (incast at the 16 µs RTO floor, chaos fleets).
type (
	// FaultConfig is one impairment setting (Bernoulli/Gilbert–Elliott
	// loss, duplication, corruption, reordering jitter, link down).
	FaultConfig = faults.Config
	// FaultPlan is a deterministic impairment timeline.
	FaultPlan = faults.Plan
	// FaultStep is one timeline entry of a FaultPlan.
	FaultStep = faults.Step
	// FaultSite groups the injectors covering one host's links
	// (obtained from Cluster.Faults).
	FaultSite = faults.Site
	// GEChannel parameterizes Gilbert–Elliott burst loss.
	GEChannel = faults.GE
)

// GELoss returns a bursty Gilbert–Elliott channel with the given
// average loss rate.
func GELoss(avg float64) *GEChannel { return faults.GELoss(avg) }

// FaultFlap returns a plan that takes a link down for outage every
// period, n times.
func FaultFlap(start, outage, period time.Duration, n int) FaultPlan {
	return faults.Flap(start, outage, period, n)
}

// IncastSetup configures RunIncast; IncastResult is its measurement.
type (
	IncastSetup  = harness.IncastSetup
	IncastResult = harness.IncastResult
)

// RunIncast executes one synchronized N-to-1 incast configuration
// (goodput collapse/recovery under the MinRTO sweep of §4.2).
func RunIncast(s IncastSetup) IncastResult { return harness.RunIncast(s) }

// ChaosSetup configures RunChaos; ChaosResult carries the invariant
// outcomes (verify errors, checksum mismatches, frame leaks).
type (
	ChaosSetup  = harness.ChaosSetup
	ChaosResult = harness.ChaosResult
)

// RunChaos executes one randomized fault schedule against an echo fleet
// in verify mode.
func RunChaos(s ChaosSetup) ChaosResult { return harness.RunChaos(s) }

// Multi-tenant arbitration (§4.1's runtime policy for allocating cores
// across several dataplanes on one machine): tenant specs, the
// SLO-driven core arbiter, and the shared-machine testbed.
type (
	// Arbiter moves cores between dataplanes by SLO.
	Arbiter = cp.Arbiter
	// ArbiterPolicy is the decision cadence and hysteresis.
	ArbiterPolicy = cp.ArbiterPolicy
	// ArbiterMember is one arbitrated dataplane with its probes.
	ArbiterMember = cp.Member
	// ArbiterMove records one core reallocation.
	ArbiterMove = cp.Move
	// ArbiterSample is one member's telemetry at one decision.
	ArbiterSample = cp.MemberSample

	// TenantApp selects a tenant's application mix.
	TenantApp = harness.TenantApp
	// SLOSpec is a tenant's latency contract.
	SLOSpec = harness.SLOSpec
	// TenantSpec describes one tenant of a shared machine.
	TenantSpec = harness.TenantSpec
	// Tenant is one running tenant.
	Tenant = harness.Tenant
	// TenantUsage is a tenant's isolation-accounting charge sheet.
	TenantUsage = harness.TenantUsage
	// TenantsSetup configures a multi-tenant testbed.
	TenantsSetup = harness.TenantsSetup
	// TenantCluster is a running multi-tenant testbed.
	TenantCluster = harness.TenantCluster
)

// Tenant application kinds.
const (
	TenantEcho   = harness.TenantEcho
	TenantMemc   = harness.TenantMemc
	TenantIncast = harness.TenantIncast
)

// DefaultArbiterPolicy returns the default arbitration cadence and
// hysteresis.
func DefaultArbiterPolicy() ArbiterPolicy { return cp.DefaultArbiterPolicy() }

// NewArbiter builds a cluster-level core arbiter over members sharing
// budget cores.
func NewArbiter(eng *sim.Engine, pol ArbiterPolicy, budget int, members ...*ArbiterMember) *Arbiter {
	return cp.NewArbiter(eng, pol, budget, members...)
}

// BuildTenants assembles and starts a multi-tenant testbed: one
// dataplane per tenant on a shared-core machine, a shared client fleet,
// and the arbiter.
func BuildTenants(s TenantsSetup) *TenantCluster { return harness.BuildTenants(s) }

// Experiments maps experiment names (fig2, fig3a, fig3b, fig3c, fig4,
// fig5, fig6, table2, elastic, incast, chaos, tenants, httpkv) to their
// runners.
var Experiments = harness.Experiments

// RunExperiment regenerates one paper figure/table at the given scale.
func RunExperiment(name string, sc Scale) (*Result, bool) {
	fn, ok := harness.Experiments[name]
	if !ok {
		return nil, false
	}
	return fn(sc), true
}

// RunEcho executes one echo configuration and returns its steady state.
func RunEcho(s harness.EchoSetup) harness.EchoResult { return harness.RunEcho(s) }

// EchoSetup configures RunEcho.
type EchoSetup = harness.EchoSetup

// EchoBench is a persistent, warmed echo testbed reused across sweep
// points: one quiet connection ramp per configuration, then delta
// establishment (or paced-FIN teardown) between measurement windows —
// the engine behind the full 250k-connection Fig. 4 sweep.
type EchoBench = harness.EchoBench

// NewEchoBench builds a persistent echo testbed from a setup template
// (connection counts are chosen per MeasurePoint call).
func NewEchoBench(s EchoSetup) *EchoBench { return harness.NewEchoBench(s) }

// EchoFleet coordinates a rotation-mode echo client population across
// sweep points (pause/drain, retarget, resume). Obtain one from
// EchoBench.Fleet(), or attach your own via EchoClientConfig.Fleet when
// building clusters directly.
type EchoFleet = echo.Fleet

// RunMemcached executes one memcached measurement point.
func RunMemcached(s harness.MemcSetup) harness.MemcResult { return harness.RunMemcached(s) }

// MemcSetup configures RunMemcached.
type MemcSetup = harness.MemcSetup

// RunHTTPKV executes one measurement point of the httpkv composite
// application: an HTTP/1.1 echo tier plus a redis-like KV tier, written
// purely against net.Conn via the ixnet blocking facade and bridged onto
// the event-driven stacks by deterministic fibers.
func RunHTTPKV(s harness.HTTPKVSetup) harness.HTTPKVResult { return harness.RunHTTPKV(s) }

// HTTPKVSetup configures RunHTTPKV.
type HTTPKVSetup = harness.HTTPKVSetup

// HTTPKVResult is one httpkv measurement point.
type HTTPKVResult = harness.HTTPKVResult

// SLA is the paper's 500 µs 99th-percentile service level agreement.
const SLA = harness.SLA

// Sanity re-exports commonly tuned durations.
const (
	// DefaultBatchBound is B=64 (§5.1).
	DefaultBatchBound = core.DefaultBatchBound
)

var _ = time.Nanosecond
