package ix

import (
	"testing"
	"time"

	"ix/internal/cost"
	"ix/internal/harness"
)

// Benchmarks regenerating the paper's evaluation (§5), one per figure or
// table. They run at Quick scale so `go test -bench=.` completes in
// minutes; `cmd/ixbench -scale full` runs the paper-scale versions. Each
// benchmark reports its headline quantity via b.ReportMetric so the
// shapes are visible in benchmark output.

// benchScale shrinks windows further under -bench to keep runs snappy,
// but runs the Fig. 4 sweep to the paper's full 250k connections: the
// quiet-ramp establishment fast path plus the persistent warmed cluster
// (one ramp per configuration, delta establishment between points) make
// the full axis cheaper than PR 4's 100k cold sweep.
var benchScale = func() Scale {
	s := Quick
	s.Warmup = 2 * time.Millisecond
	s.Window = 6 * time.Millisecond
	s.RPSSteps = 3
	s.MaxConns = 250_000
	return s
}()

// BenchmarkFig2NetPIPE regenerates Figure 2 (NetPIPE goodput vs message
// size; §5.2 latency numbers).
func BenchmarkFig2NetPIPE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig2(benchScale)
		reportPeak(b, r, "IX-IX", "IX_peak_Gbps")
		reportPeak(b, r, "Linux-Linux", "Linux_peak_Gbps")
	}
}

// BenchmarkFig3aCoreScaling regenerates Figure 3a (multi-core scaling).
func BenchmarkFig3aCoreScaling(b *testing.B) {
	sc := benchScale
	for i := 0; i < b.N; i++ {
		r := harness.Fig3a(sc)
		reportPeak(b, r, "IX-10", "IX10_peak_msgs")
		reportPeak(b, r, "Linux-10", "Linux10_peak_msgs")
	}
}

// BenchmarkFig3bMsgsPerConn regenerates Figure 3b (n round trips per
// connection).
func BenchmarkFig3bMsgsPerConn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig3b(benchScale)
		reportPeak(b, r, "IX-10", "IX10_peak_msgs")
		reportPeak(b, r, "mTCP-10", "mTCP10_peak_msgs")
	}
}

// BenchmarkFig3cMsgSize regenerates Figure 3c (message size sweep).
func BenchmarkFig3cMsgSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig3c(benchScale)
		reportPeak(b, r, "IX-40", "IX40_peak_Gbps")
	}
}

// BenchmarkFig4ConnScaling regenerates Figure 4 (connection scalability).
// Besides the peak message rate it reports the per-connection memory at
// the largest population (the DESIGN.md bytes/conn budget); the metric
// name carries "bytes" so benchjson gates it lower-is-better.
func BenchmarkFig4ConnScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig4(benchScale)
		reportPeak(b, r, "IX-40", "IX40_peak_msgs")
		if v, ok := r.Scalar("IX-40 bytes/conn"); ok {
			b.ReportMetric(v, "IX40_bytes_per_conn")
		}
		if v, ok := r.Scalar("Linux-40 bytes/conn"); ok {
			b.ReportMetric(v, "Linux40_bytes_per_conn")
		}
	}
}

// BenchmarkFig4ConnScalingShards8 runs the same Figure 4 sweep on the
// parallel engine with 8 shards. Identical experiment statistics to the
// serial run (TestSerialParallelEquivalence* pin that); the point of the
// benchmark is wall-clock — on a many-core runner the sharded sweep
// should finish severalfold faster than BenchmarkFig4ConnScaling, and
// benchjson tracks the ratio across PRs.
func BenchmarkFig4ConnScalingShards8(b *testing.B) {
	sc := benchScale
	sc.Shards = 8
	for i := 0; i < b.N; i++ {
		r := harness.Fig4(sc)
		reportPeak(b, r, "IX-40", "IX40_peak_msgs")
	}
}

// BenchmarkFig5Memcached regenerates Figure 5 (memcached
// latency-throughput for ETC and USR on Linux and IX).
func BenchmarkFig5Memcached(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig5(benchScale)
		reportPeak(b, r, "USR-IX(kernel%)", "IX_kernel_pct")
	}
}

// BenchmarkHTTPKV runs the httpkv composite application (HTTP/1.1 echo
// tier + redis-like KV tier over the ixnet blocking facade) on IX and
// Linux and reports the IX stack's combined op rate — the headline for
// how much throughput the fiber bridge preserves over raw event code.
func BenchmarkHTTPKV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.HTTPKV(benchScale)
		if v, ok := r.Get("HTTP+KV ops/s", 0); ok {
			b.ReportMetric(v, "IX_ops_per_sec")
		}
		if v, ok := r.Get("HTTP+KV ops/s", 1); ok {
			b.ReportMetric(v, "Linux_ops_per_sec")
		}
	}
}

// BenchmarkFig6BatchBound regenerates Figure 6 (batch bound sweep).
func BenchmarkFig6BatchBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Fig6(benchScale)
		_ = r
	}
}

// BenchmarkTable2SLA regenerates Table 2 (unloaded latency and SLA
// throughput).
func BenchmarkTable2SLA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Table2(benchScale)
		if v, ok := r.Get("USR-IX", 0); ok {
			b.ReportMetric(v, "USR_IX_SLA_RPS")
		}
		if v, ok := r.Get("USR-Linux", 0); ok {
			b.ReportMetric(v, "USR_Linux_SLA_RPS")
		}
	}
}

// BenchmarkAblations runs the §6/DESIGN.md ablation points: batching off
// vs on, and polling vs interrupt-like behaviour, as single echo runs.
// The client fleet must over-drive the 2-core server: with the earlier
// 4×2-core fleet the offered load sat exactly at the B=1 service rate, so
// both batch bounds reported the same (client-bound) throughput and the
// Fig. 6 batching effect was invisible.
func BenchmarkAblations(b *testing.B) {
	run := func(b *testing.B, bound int) {
		for i := 0; i < b.N; i++ {
			res := RunEcho(EchoSetup{
				ServerArch: ArchIX, ServerCores: 2, BatchBound: bound,
				ClientArch: ArchLinux, ClientHosts: 8, ClientCores: 4,
				ConnsPerThread: 8, Rounds: 256, MsgSize: 64,
				Warmup: 2 * time.Millisecond, Window: 6 * time.Millisecond,
			})
			b.ReportMetric(res.MsgsPerSec, "msgs/s")
		}
	}
	b.Run("batch=1", func(b *testing.B) { run(b, 1) })
	b.Run("batch=64", func(b *testing.B) { run(b, 64) })
}

// BenchmarkIncastRTOSweep regenerates the incast goodput-collapse
// figure (N-to-1 synchronized bursts, MinRTO swept 200µs → 16µs).
func BenchmarkIncastRTOSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Incast(benchScale)
		if v, ok := r.Get("MinRTO=200µs", 16); ok {
			b.ReportMetric(v, "RTO200us_16senders_Gbps")
		}
		if v, ok := r.Get("MinRTO=16µs", 16); ok {
			b.ReportMetric(v, "RTO16us_16senders_Gbps")
		}
	}
}

// BenchmarkChaosFleet regenerates the randomized-fault-schedule echo
// experiment with its end-to-end invariant checks.
func BenchmarkChaosFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Chaos(benchScale)
		reportPeak(b, r, "msgs/s", "peak_phase_msgs")
	}
}

// BenchmarkTenantArbiter runs the multi-tenant arbitration experiment:
// three tenants on one shared machine, a flash crowd on the frontend,
// and the SLO-driven arbiter reallocating cores through it.
func BenchmarkTenantArbiter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.Tenants(benchScale)
		reportPeak(b, r, "frontend cores", "frontend_peak_cores")
	}
}

func reportPeak(b *testing.B, r *Result, label, metric string) {
	b.Helper()
	if v := r.Max(label); v > 0 {
		b.ReportMetric(v, metric)
	}
}

// BenchmarkAblationZeroCopy isolates the zero-copy API: the same IX
// dataplane with a per-byte copy charged on RX and TX (a conventional
// socket layer) versus the real zero-copy path (§3, §6).
func BenchmarkAblationZeroCopy(b *testing.B) {
	run := func(b *testing.B, withCopy bool) {
		c := cost.DefaultIX()
		if withCopy {
			c.CopyPerByte = 0.25
		}
		for i := 0; i < b.N; i++ {
			res := RunEcho(EchoSetup{
				ServerArch: ArchIX, ServerCores: 1, IXCost: &c,
				ClientArch: ArchLinux, ClientHosts: 8, ClientCores: 4,
				ConnsPerThread: 8, Rounds: 256, MsgSize: 1024,
				Warmup: 2 * time.Millisecond, Window: 6 * time.Millisecond,
			})
			b.ReportMetric(res.MsgsPerSec, "msgs/s")
		}
	}
	b.Run("zero-copy", func(b *testing.B) { run(b, false) })
	b.Run("copying", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationDoorbell isolates the §6 PCIe doorbell coalescing:
// one descriptor-ring write per packet versus batched replenishment.
func BenchmarkAblationDoorbell(b *testing.B) {
	run := func(b *testing.B, perPacket bool) {
		c := cost.DefaultIX()
		c.NoDoorbellCoalesce = perPacket
		for i := 0; i < b.N; i++ {
			res := RunEcho(EchoSetup{
				ServerArch: ArchIX, ServerCores: 1, IXCost: &c,
				ClientArch: ArchLinux, ClientHosts: 8, ClientCores: 4,
				ConnsPerThread: 8, Rounds: 256, MsgSize: 64,
				Warmup: 2 * time.Millisecond, Window: 6 * time.Millisecond,
			})
			b.ReportMetric(res.MsgsPerSec, "msgs/s")
		}
	}
	b.Run("coalesced", func(b *testing.B) { run(b, false) })
	b.Run("per-packet", func(b *testing.B) { run(b, true) })
}
